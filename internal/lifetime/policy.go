// Package lifetime is the device-lifetime subsystem layered on top of the
// paper's erase-free subpage programming: it decides how deep each erase
// needs to be (adaptive erase, after AERO, arXiv 2404.10355) and predicts
// how long freshly written data will live (longevity-aware placement,
// after Choi & Jung, arXiv 1704.05138) so the FTLs can steer writes by
// expected lifetime instead of request size alone. Both mechanisms are
// policy objects consulted by the block manager and the FTL cores; with
// neither installed every FTL is bit-identical to a build without this
// package.
package lifetime

import (
	"fmt"
	"time"

	"espftl/internal/nand"
)

// ErasePolicy chooses the depth of the next erase of a block from its wear
// state. The block manager consults it at recycle time.
type ErasePolicy interface {
	// Name identifies the policy in stats and experiment tables.
	Name() string
	// Depth returns the erase depth for a block with the given raw erase
	// count and effective wear (deep-erase equivalents).
	Depth(eraseCount int, effWear float64) nand.EraseDepth
}

// FixedDeep is the conventional baseline: every erase runs at full depth.
// It is bit-identical to having no policy installed.
type FixedDeep struct{}

// Name implements ErasePolicy.
func (FixedDeep) Name() string { return "fixed-deep" }

// Depth implements ErasePolicy.
func (FixedDeep) Depth(int, float64) nand.EraseDepth { return nand.DepthFull }

// Requirement is one retention obligation an adaptive erase must preserve:
// data of the given subpage type must stay correctable for the horizon.
type Requirement struct {
	Npp     nand.NppType
	Horizon time.Duration
}

// AERO is the adaptive policy: it erases as shallowly as the block's wear
// allows while analytically guaranteeing every retention requirement. The
// shallow-erase BER factor S(d) = 1 + penalty*(1-d) must stay under the
// tightest MaxShallowFactor bound across the requirements, evaluated at
// the block's post-erase wear; as effective wear approaches the rated
// life the bound collapses to 1 and the policy converges to full-depth
// erases by itself.
type AERO struct {
	// Model is the retention model the guarantee is computed against; it
	// must be the device's.
	Model nand.RetentionModel
	// Require lists the retention obligations. The zero value is filled
	// by NewAERO with the repository's operating envelope: worst-case
	// N³pp subpage data for the paper's 1-month subpage horizon, and
	// N⁰pp full-page data for the JEDEC-style 12-month requirement.
	Require []Requirement
	// Margin derates the analytic bound (a bound of S must be met at
	// Margin*S) so model noise never lands data exactly on the ECC limit.
	Margin float64
	// Floor is the shallowest depth the policy will ever pick.
	Floor nand.EraseDepth
}

// NewAERO returns the adaptive policy with the default operating envelope
// for the given retention model.
func NewAERO(model nand.RetentionModel) *AERO {
	return &AERO{
		Model: model,
		Require: []Requirement{
			{Npp: 3, Horizon: nand.Month},
			{Npp: 0, Horizon: 12 * nand.Month},
		},
		Margin: 0.90,
		Floor:  nand.MinEraseDepth,
	}
}

// Name implements ErasePolicy.
func (a *AERO) Name() string { return "aero" }

// depthSteps quantizes chosen depths to 1/16ths (rounding deeper), the
// granularity a real pulse-train controller would expose.
const depthSteps = 16

// Depth implements ErasePolicy.
func (a *AERO) Depth(eraseCount int, effWear float64) nand.EraseDepth {
	_ = eraseCount
	if a.Model.ShallowPenalty <= 0 {
		// Without a modelled penalty a shallow erase is retention-free;
		// the floor is the only constraint left.
		return a.Floor
	}
	// Worst-case post-erase wear: the erase about to happen adds at most
	// one deep-erase equivalent.
	wear := effWear + 1
	sAllow := 0.0
	for i, r := range a.Require {
		s := a.Model.MaxShallowFactor(r.Npp, r.Horizon, wear) * a.Margin
		if i == 0 || s < sAllow {
			sAllow = s
		}
	}
	if sAllow <= 1 {
		return nand.DepthFull
	}
	// Invert S(d) = 1 + penalty*(1-d) <= sAllow for the shallowest
	// admissible depth, then round deeper onto the pulse-train grid.
	d := 1 - (sAllow-1)/a.Model.ShallowPenalty
	if d < float64(a.Floor) {
		d = float64(a.Floor)
	}
	steps := float64(int(d*depthSteps)) / depthSteps
	if steps < d {
		steps += 1.0 / depthSteps
	}
	if steps >= 1 {
		return nand.DepthFull
	}
	return nand.EraseDepth(steps)
}

// NewErasePolicy resolves a policy by its flag name ("fixed-deep" or
// "fixed", "aero"; empty picks the fixed-deep baseline) against the given
// retention model.
func NewErasePolicy(name string, model nand.RetentionModel) (ErasePolicy, error) {
	switch name {
	case "", "fixed", "fixed-deep":
		return FixedDeep{}, nil
	case "aero":
		return NewAERO(model), nil
	}
	return nil, fmt.Errorf("lifetime: unknown erase policy %q (want fixed-deep or aero)", name)
}

// DepthFn adapts an erase policy to the block manager's erase-depth hook
// for the given device. A nil policy yields a nil hook (legacy full-depth
// erases).
func DepthFn(dev *nand.Device, p ErasePolicy) func(nand.BlockID) nand.EraseDepth {
	if p == nil {
		return nil
	}
	return func(b nand.BlockID) nand.EraseDepth {
		return p.Depth(dev.EraseCount(b), dev.EffectiveWear(b))
	}
}
