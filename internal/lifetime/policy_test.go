package lifetime

import (
	"testing"

	"espftl/internal/nand"
	"espftl/internal/sim"
)

func TestFixedDeepIsFullDepth(t *testing.T) {
	var p FixedDeep
	if p.Name() != "fixed-deep" {
		t.Errorf("name = %q", p.Name())
	}
	for _, wear := range []float64{0, 1, 500, 1000, 5000} {
		if d := p.Depth(int(wear), wear); d != nand.DepthFull {
			t.Errorf("FixedDeep.Depth(wear=%v) = %v, want full", wear, d)
		}
	}
}

// The adaptive policy's operating arc: fresh blocks get the shallowest
// erase the device accepts, depth deepens monotonically as effective wear
// accumulates, and at the rated life the policy converges to full-depth
// erases on its own.
func TestAEROMonotoneDeepening(t *testing.T) {
	p := NewAERO(nand.DefaultRetention)
	if p.Name() != "aero" {
		t.Errorf("name = %q", p.Name())
	}
	if d := p.Depth(0, 0); d != nand.MinEraseDepth {
		t.Errorf("fresh-block depth = %v, want the floor %v", d, nand.MinEraseDepth)
	}
	rated := float64(nand.DefaultRetention.RatedPE)
	prev := nand.EraseDepth(0)
	for wear := 0.0; wear <= 2*rated; wear += rated / 50 {
		d := p.Depth(int(wear), wear)
		if !d.Valid() {
			t.Fatalf("Depth(wear=%v) = %v, outside [%v, %v]", wear, d, nand.MinEraseDepth, nand.DepthFull)
		}
		if d < prev {
			t.Fatalf("depth shallowed with wear: %v at wear %v, was %v", d, wear, prev)
		}
		prev = d
	}
	if d := p.Depth(int(rated), rated); d != nand.DepthFull {
		t.Errorf("depth at rated wear = %v, want full", d)
	}
}

// Every depth AERO picks must actually preserve its retention
// requirements: data programmed after an erase at that depth, on a block
// that then carries the post-erase wear, stays correctable through each
// requirement's horizon.
func TestAERODepthPreservesRetention(t *testing.T) {
	m := nand.DefaultRetention
	p := NewAERO(m)
	rated := float64(m.RatedPE)
	for wear := 0.0; wear < rated; wear += rated / 40 {
		d := p.Depth(int(wear), wear)
		post := wear + float64(d)
		for _, r := range p.Require {
			if !m.CorrectableAt(r.Npp, r.Horizon, post, d) {
				t.Fatalf("depth %v at wear %v breaks %v over %v", d, wear, r.Npp, r.Horizon)
			}
		}
	}
}

// Zero shallow penalty makes shallow erases retention-free; the floor is
// then the only constraint and the policy pins to it at any wear.
func TestAEROZeroPenaltyPinsFloor(t *testing.T) {
	m := nand.DefaultRetention
	m.ShallowPenalty = 0
	p := NewAERO(m)
	for _, wear := range []float64{0, 500, 2000} {
		if d := p.Depth(int(wear), wear); d != p.Floor {
			t.Errorf("Depth(wear=%v) = %v, want floor %v", wear, d, p.Floor)
		}
	}
}

// Depths land on the 1/16th pulse-train grid, rounded deeper, never
// shallower, than the analytic bound.
func TestAEROQuantizedToGrid(t *testing.T) {
	p := NewAERO(nand.DefaultRetention)
	rated := float64(nand.DefaultRetention.RatedPE)
	for wear := 0.0; wear < rated; wear += rated / 100 {
		d := p.Depth(int(wear), wear)
		if d == nand.DepthFull || d == p.Floor {
			continue
		}
		steps := float64(d) * depthSteps
		if steps != float64(int(steps)) {
			t.Fatalf("Depth(wear=%v) = %v is off the 1/%d grid", wear, d, depthSteps)
		}
	}
}

func TestNewErasePolicy(t *testing.T) {
	m := nand.DefaultRetention
	for _, name := range []string{"", "fixed", "fixed-deep"} {
		p, err := NewErasePolicy(name, m)
		if err != nil {
			t.Fatalf("NewErasePolicy(%q): %v", name, err)
		}
		if _, ok := p.(FixedDeep); !ok {
			t.Errorf("NewErasePolicy(%q) = %T, want FixedDeep", name, p)
		}
	}
	p, err := NewErasePolicy("aero", m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*AERO); !ok {
		t.Errorf("NewErasePolicy(aero) = %T", p)
	}
	if _, err := NewErasePolicy("bogus", m); err == nil {
		t.Error("unknown policy name accepted")
	}
}

// DepthFn feeds the policy the device's real wear state: after erases at
// known depths, the adapter's answers track the block's accumulated
// effective wear, and a nil policy yields a nil hook.
func TestDepthFn(t *testing.T) {
	if fn := DepthFn(nil, nil); fn != nil {
		t.Fatal("nil policy must yield a nil hook")
	}
	cfg := nand.DefaultConfig()
	cfg.Geometry = nand.Geometry{
		Channels: 1, ChipsPerChannel: 1, BlocksPerChip: 4,
		PagesPerBlock: 8, SubpagesPerPage: 4, SubpageBytes: 4096,
	}
	dev, err := nand.NewDevice(cfg, sim.NewClock(0))
	if err != nil {
		t.Fatal(err)
	}
	fn := DepthFn(dev, FixedDeep{})
	if d := fn(0); d != nand.DepthFull {
		t.Fatalf("fixed-deep hook returned %v", d)
	}
	aero := NewAERO(*dev.Retention())
	fn = DepthFn(dev, aero)
	if d := fn(0); d != aero.Depth(0, 0) {
		t.Fatalf("hook on a fresh block returned %v, policy says %v", d, aero.Depth(0, 0))
	}
	// Age block 0 and check the hook sees the accumulated wear.
	dev.SetEraseCount(0, dev.Retention().RatedPE)
	want := aero.Depth(dev.EraseCount(0), dev.EffectiveWear(0))
	if d := fn(0); d != want || d != nand.DepthFull {
		t.Fatalf("hook at rated wear returned %v, want %v (full)", d, want)
	}
}
