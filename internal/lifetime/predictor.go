package lifetime

import "fmt"

// Class is the predicted longevity of a logical page's current data.
type Class uint8

const (
	// ClassUnknown: not enough history to predict (cold-start, or a page
	// between the hot and cold thresholds). Callers fall back to their
	// legacy size-based routing.
	ClassUnknown Class = iota
	// ClassHot: the page is predicted to be rewritten soon; its data is
	// short-lived.
	ClassHot
	// ClassCold: the page is predicted to stay untouched for a long time;
	// its data is long-lived.
	ClassCold
)

// String names the class for experiment tables.
func (c Class) String() string {
	switch c {
	case ClassHot:
		return "hot"
	case ClassCold:
		return "cold"
	}
	return "unknown"
}

// PredictorConfig tunes the update-interval predictor. The zero value is
// usable: every field falls back to the documented default.
type PredictorConfig struct {
	// Alpha is the EWMA weight of the newest observed interval (0,1];
	// default 0.5.
	Alpha float64
	// HotFrac and ColdFrac set the class thresholds as fractions of the
	// tracked page count: a page whose predicted rewrite interval is
	// under HotFrac passes of the logical space (in page-writes) is hot,
	// over ColdFrac passes is cold, in between unknown. Defaults 1.0 and
	// 2.0: data not refreshed within two full passes of the logical
	// space is long-lived for placement purposes.
	HotFrac, ColdFrac float64
	// MinSamples is how many observations a page needs before its EWMA is
	// trusted (a long-silent page classifies cold on staleness alone
	// earlier). Default 2.
	MinSamples uint8
}

func (c PredictorConfig) withDefaults() PredictorConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.HotFrac <= 0 {
		c.HotFrac = 1.0
	}
	if c.ColdFrac <= 0 {
		c.ColdFrac = 2.0
	}
	if c.ColdFrac < c.HotFrac {
		c.ColdFrac = c.HotFrac
	}
	if c.MinSamples == 0 {
		c.MinSamples = 2
	}
	return c
}

// Predictor estimates per-logical-page update intervals with a bounded-
// memory EWMA (Choi & Jung, arXiv 1704.05138): three flat arrays over the
// logical page space, an O(1) zero-allocation update per write, and no
// persistence — the tables are RAM-only prediction state (like the
// subFTL's hot/cold GC bits) and restart cold after Recover.
//
// Time is the predictor's own logical write clock (one tick per observed
// page write), not virtual device time: saturated closed-loop workloads
// barely advance the virtual clock, while write-count intervals measure
// exactly the quantity placement cares about — how much other data lands
// between two updates of the same page.
type Predictor struct {
	cfg                   PredictorConfig
	hotThresh, coldThresh float64
	lastOp                []int64   // write-clock stamp of the last observation; 0 = never
	ewma                  []float64 // predicted rewrite interval, in page-writes
	samples               []uint8   // observation count, saturating
	op                    int64     // logical write clock
	observes              int64
}

// NewPredictor builds a predictor over a logical space of pages pages.
func NewPredictor(pages int64, cfg PredictorConfig) (*Predictor, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("lifetime: predictor over %d pages", pages)
	}
	cfg = cfg.withDefaults()
	return &Predictor{
		cfg:        cfg,
		hotThresh:  cfg.HotFrac * float64(pages),
		coldThresh: cfg.ColdFrac * float64(pages),
		lastOp:     make([]int64, pages),
		ewma:       make([]float64, pages),
		samples:    make([]uint8, pages),
	}, nil
}

// Pages returns the tracked logical page count.
func (p *Predictor) Pages() int64 { return int64(len(p.lastOp)) }

// Observes returns how many page writes the predictor has seen.
func (p *Predictor) Observes() int64 { return p.observes }

// Observe records one write of page lpn and advances the write clock.
// O(1), allocation-free (guarded by TestPredictorObserveAllocs).
func (p *Predictor) Observe(lpn int64) {
	p.op++
	p.observes++
	last := p.lastOp[lpn]
	p.lastOp[lpn] = p.op
	n := p.samples[lpn]
	if n == 0 {
		p.samples[lpn] = 1
		return
	}
	iv := float64(p.op - last)
	if n == 1 {
		p.ewma[lpn] = iv
	} else {
		p.ewma[lpn] += p.cfg.Alpha * (iv - p.ewma[lpn])
	}
	if n < ^uint8(0) {
		p.samples[lpn] = n + 1
	}
}

// Class predicts the longevity of page lpn's current data. Staleness
// overrides the EWMA in both directions: a page silent for longer than its
// predicted interval is at least that old, so the effective prediction is
// max(EWMA, time since last write).
func (p *Predictor) Class(lpn int64) Class {
	n := p.samples[lpn]
	if n == 0 {
		return ClassUnknown
	}
	sinceLast := float64(p.op - p.lastOp[lpn])
	if n < p.cfg.MinSamples {
		if sinceLast >= p.coldThresh {
			return ClassCold
		}
		return ClassUnknown
	}
	predicted := p.ewma[lpn]
	if sinceLast > predicted {
		predicted = sinceLast
	}
	if predicted <= p.hotThresh {
		return ClassHot
	}
	if predicted >= p.coldThresh {
		return ClassCold
	}
	return ClassUnknown
}

// Reset clears all prediction state, as a mount-time Recover does: the
// tables are RAM-only and restart cold.
func (p *Predictor) Reset() {
	for i := range p.lastOp {
		p.lastOp[i] = 0
		p.ewma[i] = 0
		p.samples[i] = 0
	}
	p.op = 0
	p.observes = 0
}
