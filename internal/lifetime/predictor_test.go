package lifetime

import (
	"testing"
)

func TestNewPredictorRejectsEmptySpace(t *testing.T) {
	for _, pages := range []int64{0, -1} {
		if _, err := NewPredictor(pages, PredictorConfig{}); err == nil {
			t.Errorf("NewPredictor(%d) accepted", pages)
		}
	}
}

func TestPredictorConfigDefaults(t *testing.T) {
	c := PredictorConfig{}.withDefaults()
	if c.Alpha != 0.5 || c.HotFrac != 1.0 || c.ColdFrac != 2.0 || c.MinSamples != 2 {
		t.Fatalf("defaults = %+v", c)
	}
	// ColdFrac can never undercut HotFrac: the class bands must not invert.
	c = PredictorConfig{HotFrac: 3, ColdFrac: 1}.withDefaults()
	if c.ColdFrac < c.HotFrac {
		t.Fatalf("inverted bands survived: %+v", c)
	}
}

// A page rewritten every few writes classifies hot; a page written twice
// and then left alone goes cold once enough other traffic has passed; a
// never-seen page stays unknown.
func TestPredictorClasses(t *testing.T) {
	const pages = 100
	p, err := NewPredictor(pages, PredictorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if c := p.Class(5); c != ClassUnknown {
		t.Fatalf("never-written page classed %v", c)
	}
	// Hammer page 0 with one other write in between: interval 2.
	for i := 0; i < 10; i++ {
		p.Observe(0)
		p.Observe(1)
	}
	if c := p.Class(0); c != ClassHot {
		t.Fatalf("interval-2 page classed %v, want hot", c)
	}
	// Page 7: two observations close together, then silence. Its EWMA is
	// tiny, but staleness overrides it once 2x the page space has passed.
	p.Observe(7)
	p.Observe(7)
	for i := int64(0); i < 2*pages+1; i++ {
		p.Observe(1)
	}
	if c := p.Class(7); c != ClassCold {
		t.Fatalf("long-silent page classed %v, want cold", c)
	}
	// And its in-between twin stays unclassified.
	p.Observe(9)
	p.Observe(9)
	for i := int64(0); i < pages+pages/2; i++ {
		p.Observe(1)
	}
	if c := p.Class(9); c != ClassUnknown {
		t.Fatalf("mid-band page classed %v, want unknown", c)
	}
}

// Under MinSamples a page has no trustworthy EWMA: it can only go cold on
// raw staleness, never hot.
func TestPredictorMinSamplesGate(t *testing.T) {
	const pages = 50
	p, err := NewPredictor(pages, PredictorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(3)
	if c := p.Class(3); c != ClassUnknown {
		t.Fatalf("single-sample page classed %v", c)
	}
	for i := int64(0); i < 2*pages+1; i++ {
		p.Observe(1)
	}
	if c := p.Class(3); c != ClassCold {
		t.Fatalf("single-sample stale page classed %v, want cold", c)
	}
}

// Staleness also overrides a hot history: a formerly hot page that falls
// silent for long enough reclassifies cold, so placement never pins a
// dead-hot page to the subpage region forever.
func TestPredictorStalenessOverridesHotHistory(t *testing.T) {
	const pages = 50
	p, err := NewPredictor(pages, PredictorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p.Observe(0)
	}
	if c := p.Class(0); c != ClassHot {
		t.Fatalf("back-to-back page classed %v", c)
	}
	for i := int64(0); i < 2*pages; i++ {
		p.Observe(1)
	}
	if c := p.Class(0); c != ClassCold {
		t.Fatalf("stale formerly-hot page classed %v, want cold", c)
	}
}

func TestPredictorReset(t *testing.T) {
	p, err := NewPredictor(16, PredictorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p.Observe(int64(i % 16))
	}
	if p.Observes() == 0 {
		t.Fatal("no observations recorded")
	}
	p.Reset()
	if p.Observes() != 0 {
		t.Fatalf("Observes after reset = %d", p.Observes())
	}
	for lpn := int64(0); lpn < 16; lpn++ {
		if c := p.Class(lpn); c != ClassUnknown {
			t.Fatalf("page %d classed %v after reset", lpn, c)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassHot.String() != "hot" || ClassCold.String() != "cold" || ClassUnknown.String() != "unknown" {
		t.Fatal("class names changed")
	}
}

// TestPredictorObserveAllocs pins the per-write predictor update at zero
// allocations: it sits on the FTL write hot path, which the repo-wide
// alloc guards require to stay off the heap.
func TestPredictorObserveAllocs(t *testing.T) {
	p, err := NewPredictor(4096, PredictorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	lpn := int64(0)
	avg := testing.AllocsPerRun(1000, func() {
		p.Observe(lpn)
		p.Observe(lpn + 1)
		lpn = (lpn + 2) % 4096
	})
	if avg != 0 {
		t.Errorf("Observe allocates %.2f objects per call pair, want 0", avg)
	}
	avg = testing.AllocsPerRun(1000, func() {
		_ = p.Class(lpn)
	})
	if avg != 0 {
		t.Errorf("Class allocates %.2f objects per call, want 0", avg)
	}
}

// BenchmarkLifetimePredict measures the write-path cost of the predictor:
// one Observe plus the Class consult every small write pays.
func BenchmarkLifetimePredict(b *testing.B) {
	const pages = 1 << 16
	p, err := NewPredictor(pages, PredictorConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lpn := int64(i) % pages
		p.Observe(lpn)
		if p.Class(lpn) == ClassHot && i < 0 {
			b.Fatal("unreachable")
		}
	}
}
