package buffer

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestAlignedCompletesPage(t *testing.T) {
	b := NewAligned(4, 64)
	full, ev := b.Stage([]int64{8, 9, 10})
	if full != nil || ev != nil {
		t.Fatalf("partial stage emitted: %v %v", full, ev)
	}
	if b.Len() != 3 || !b.Contains(9) || b.Contains(11) {
		t.Fatalf("staging state wrong: len=%d", b.Len())
	}
	full, ev = b.Stage([]int64{11})
	if !reflect.DeepEqual(full, []int64{2}) || ev != nil {
		t.Fatalf("completion = %v %v, want page 2", full, ev)
	}
	if b.Len() != 0 || b.Merged() != 1 {
		t.Fatalf("post-merge: len=%d merged=%d", b.Len(), b.Merged())
	}
}

func TestAlignedScatteredNeverMerges(t *testing.T) {
	b := NewAligned(4, 64)
	// Sectors from different pages, none completing.
	full, _ := b.Stage([]int64{0, 5, 10, 15, 20, 25})
	if full != nil {
		t.Fatalf("scattered sectors merged: %v", full)
	}
	if b.Len() != 6 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestAlignedDuplicateAbsorbed(t *testing.T) {
	b := NewAligned(4, 64)
	b.Stage([]int64{7})
	b.Stage([]int64{7})
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
}

func TestAlignedCapacityEviction(t *testing.T) {
	b := NewAligned(4, 8)
	// Nine scattered sectors: oldest page's group must be evicted.
	var full []int64
	var ev [][]int64
	for i := int64(0); i < 9; i++ {
		f, e := b.Stage([]int64{i * 4}) // each in its own page
		full = append(full, f...)
		ev = append(ev, e...)
	}
	if full != nil {
		t.Fatalf("unexpected merges: %v", full)
	}
	if len(ev) != 1 || !reflect.DeepEqual(ev[0], []int64{0}) {
		t.Fatalf("evicted = %v, want [[0]]", ev)
	}
	if b.Evicted() != 1 || b.Len() != 8 {
		t.Fatalf("evicted=%d len=%d", b.Evicted(), b.Len())
	}
}

func TestAlignedRemove(t *testing.T) {
	b := NewAligned(4, 64)
	b.Stage([]int64{0, 1, 2})
	b.Remove([]int64{1, 99})
	if b.Contains(1) || !b.Contains(0) || b.Len() != 2 {
		t.Fatal("Remove misbehaved")
	}
	// Removing the last sector of a page drops its tracking entirely.
	b.Remove([]int64{0, 2})
	if b.Len() != 0 {
		t.Fatalf("Len = %d", b.Len())
	}
	// Completing the page later still works from scratch.
	full, _ := b.Stage([]int64{0, 1, 2, 3})
	if !reflect.DeepEqual(full, []int64{0}) {
		t.Fatalf("full = %v", full)
	}
}

func TestAlignedDrain(t *testing.T) {
	b := NewAligned(4, 64)
	b.Stage([]int64{0, 1, 8})
	groups := b.Drain()
	if len(groups) != 2 {
		t.Fatalf("drain groups = %v", groups)
	}
	if !reflect.DeepEqual(groups[0], []int64{0, 1}) || !reflect.DeepEqual(groups[1], []int64{8}) {
		t.Fatalf("drain = %v", groups)
	}
	if b.Len() != 0 {
		t.Fatal("drain left residue")
	}
	if b.Drain() != nil {
		t.Fatal("second drain non-empty")
	}
}

func TestAlignedPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewAligned(0, 8) },
		func() { NewAligned(65, 650) },
		func() { NewAligned(4, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad config did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: sector conservation — every staged sector leaves exactly once
// (merge, eviction, removal, or drain), and Len always matches.
func TestAlignedConservationProperty(t *testing.T) {
	f := func(ops []struct {
		LSN    uint8
		Remove bool
	}) bool {
		b := NewAligned(4, 16)
		inBuf := make(map[int64]bool)
		for _, op := range ops {
			lsn := int64(op.LSN % 64)
			if op.Remove {
				b.Remove([]int64{lsn})
				delete(inBuf, lsn)
			} else {
				full, ev := b.Stage([]int64{lsn})
				inBuf[lsn] = true
				for _, lpn := range full {
					for s := int64(0); s < 4; s++ {
						if !inBuf[lpn*4+s] {
							return false // merged a sector never staged
						}
						delete(inBuf, lpn*4+s)
					}
				}
				for _, grp := range ev {
					for _, l := range grp {
						if !inBuf[l] {
							return false
						}
						delete(inBuf, l)
					}
				}
			}
			if b.Len() != len(inBuf) {
				return false
			}
			for l := range inBuf {
				if !b.Contains(l) {
					return false
				}
			}
		}
		rest := 0
		for _, grp := range b.Drain() {
			rest += len(grp)
		}
		return rest == len(inBuf) && b.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
