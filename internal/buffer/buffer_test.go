package buffer

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestAsyncMergesToFullGroups(t *testing.T) {
	b := New(4)
	if got := b.Write([]int64{1}, false); got != nil {
		t.Fatalf("first sector flushed early: %v", got)
	}
	if got := b.Write([]int64{2, 3}, false); got != nil {
		t.Fatalf("three sectors flushed early: %v", got)
	}
	got := b.Write([]int64{4}, false)
	if len(got) != 1 || got[0].Sync || !reflect.DeepEqual(got[0].LSNs, []int64{1, 2, 3, 4}) {
		t.Fatalf("full flush = %+v", got)
	}
	if b.Len() != 0 {
		t.Fatalf("buffer not empty after full flush: %d", b.Len())
	}
	if b.FlushedFull() != 1 || b.FlushedPartial() != 0 {
		t.Fatalf("counters: full=%d part=%d", b.FlushedFull(), b.FlushedPartial())
	}
}

func TestSyncBypassesMerging(t *testing.T) {
	b := New(4)
	b.Write([]int64{1, 2}, false)
	got := b.Write([]int64{100}, true)
	if len(got) != 1 || !got[0].Sync || !reflect.DeepEqual(got[0].LSNs, []int64{100}) {
		t.Fatalf("sync flush = %+v", got)
	}
	// Async residents stay put.
	if b.Len() != 2 || !b.Contains(1) || !b.Contains(2) {
		t.Fatalf("async residents disturbed: len=%d", b.Len())
	}
	if b.FlushedPartial() != 1 {
		t.Fatalf("partial count = %d", b.FlushedPartial())
	}
}

func TestSyncSupersedesBufferedCopy(t *testing.T) {
	b := New(4)
	b.Write([]int64{7, 8}, false)
	got := b.Write([]int64{7}, true)
	if len(got) != 1 || !reflect.DeepEqual(got[0].LSNs, []int64{7}) {
		t.Fatalf("sync flush = %+v", got)
	}
	if b.Contains(7) {
		t.Fatal("stale async copy of 7 still buffered")
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
}

func TestDuplicateAsyncAbsorbed(t *testing.T) {
	b := New(4)
	b.Write([]int64{5}, false)
	b.Write([]int64{5}, false)
	b.Write([]int64{5}, false)
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (duplicates absorbed)", b.Len())
	}
	if b.Absorbed() != 2 {
		t.Fatalf("Absorbed = %d, want 2", b.Absorbed())
	}
}

func TestLargeAsyncWriteMultipleGroups(t *testing.T) {
	b := New(4)
	lsns := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8}
	got := b.Write(lsns, false)
	if len(got) != 2 {
		t.Fatalf("groups = %d, want 2", len(got))
	}
	if !reflect.DeepEqual(got[0].LSNs, []int64{0, 1, 2, 3}) || !reflect.DeepEqual(got[1].LSNs, []int64{4, 5, 6, 7}) {
		t.Fatalf("groups = %+v", got)
	}
	if b.Len() != 1 || !b.Contains(8) {
		t.Fatal("tail sector not retained")
	}
}

func TestSyncLargeWriteSingleGroup(t *testing.T) {
	b := New(4)
	got := b.Write([]int64{0, 1, 2, 3, 4}, true)
	if len(got) != 1 || len(got[0].LSNs) != 5 || !got[0].Sync {
		t.Fatalf("sync large flush = %+v", got)
	}
	// 5 sectors = 1 full page + partial remainder.
	if b.FlushedFull() != 1 || b.FlushedPartial() != 1 {
		t.Fatalf("counters: full=%d part=%d", b.FlushedFull(), b.FlushedPartial())
	}
}

func TestTrimRemovesResidents(t *testing.T) {
	b := New(4)
	b.Write([]int64{1, 2, 3}, false)
	b.Trim([]int64{2, 99})
	if b.Contains(2) {
		t.Fatal("trimmed sector still resident")
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
}

func TestDrain(t *testing.T) {
	b := New(4)
	if got := b.Drain(); got != nil {
		t.Fatalf("empty drain = %v", got)
	}
	b.Write([]int64{1, 2, 3, 4, 5, 6}, false) // flushes {1..4}, retains {5,6}
	got := b.Drain()
	if len(got) != 1 || !reflect.DeepEqual(got[0].LSNs, []int64{5, 6}) {
		t.Fatalf("drain = %+v", got)
	}
	if b.Len() != 0 {
		t.Fatal("buffer not empty after drain")
	}
}

func TestNewPanicsOnBadPageSectors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// Property: no sector is ever lost or duplicated — every written LSN is,
// at any point, either exactly once in the buffer or has appeared in
// exactly as many flush groups as droppable versions demand; and drain
// leaves the buffer empty with every resident flushed once.
func TestBufferConservationProperty(t *testing.T) {
	f := func(ops []struct {
		LSN  uint8
		Sync bool
	}) bool {
		b := New(4)
		flushed := make(map[int64]int)
		record := func(gs []Group) {
			for _, g := range gs {
				for _, lsn := range g.LSNs {
					flushed[lsn]++
				}
			}
		}
		written := make(map[int64]int)
		for _, op := range ops {
			lsn := int64(op.LSN % 32)
			written[lsn]++
			record(b.Write([]int64{lsn}, op.Sync))
		}
		record(b.Drain())
		if b.Len() != 0 {
			return false
		}
		for lsn, w := range written {
			fl := flushed[lsn]
			// Every write either reached flash or was absorbed by a newer
			// buffered version; at least one copy must have flushed, and
			// never more copies than writes.
			if fl < 1 || fl > w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
