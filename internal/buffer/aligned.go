package buffer

import "fmt"

// Aligned is subFTL's write buffer (paper §4.1): it merges small
// asynchronous writes "with consecutive logical block addresses into one
// sequential write". Unlike the FGM buffer, which may pack arbitrary
// sectors into one physical page (fine-grained mapping permits that), the
// subFTL buffer can only complete *aligned logical pages*, because its
// full-page region is coarse-grained: a merged flush must be exactly the
// N_sub sectors of one logical page.
//
// Sectors that fail to merge leave the buffer either with their
// synchronous write or by capacity eviction, and subFTL routes them to
// the subpage region.
type Aligned struct {
	pageSecs   int
	maxSectors int
	masks      map[int64]uint64 // LPN -> staged-sector bitmask
	order      []int64          // LPN FIFO for capacity eviction
	sectors    int
	merged     int64
	evictions  int64

	// Reusable scratch backing Stage's and Drain's results; see the
	// borrow contract on Stage.
	fullBuf    []int64
	evictBuf   [][]int64
	groupArena []int64
}

// NewAligned returns a buffer holding at most maxSectors staged sectors.
func NewAligned(pageSecs, maxSectors int) *Aligned {
	if pageSecs <= 0 || pageSecs > 64 {
		panic(fmt.Sprintf("buffer: pageSecs = %d", pageSecs))
	}
	if maxSectors < pageSecs {
		panic(fmt.Sprintf("buffer: maxSectors = %d below one page", maxSectors))
	}
	return &Aligned{
		pageSecs:   pageSecs,
		maxSectors: maxSectors,
		masks:      make(map[int64]uint64),
	}
}

// Len returns the number of staged sectors.
func (b *Aligned) Len() int { return b.sectors }

// Merged counts logical pages completed and emitted as full-page flushes.
func (b *Aligned) Merged() int64 { return b.merged }

// Evicted counts sectors pushed out by capacity pressure.
func (b *Aligned) Evicted() int64 { return b.evictions }

// Contains reports whether lsn is staged (a read hit).
func (b *Aligned) Contains(lsn int64) bool {
	mask := b.masks[lsn/int64(b.pageSecs)]
	return mask&(1<<uint(lsn%int64(b.pageSecs))) != 0
}

func (b *Aligned) fullMask() uint64 { return (uint64(1) << b.pageSecs) - 1 }

func (b *Aligned) dropLPN(lpn int64) {
	for i, v := range b.order {
		if v == lpn {
			b.order = append(b.order[:i], b.order[i+1:]...)
			return
		}
	}
}

func (b *Aligned) countBits(mask uint64) int {
	n := 0
	for ; mask != 0; mask &= mask - 1 {
		n++
	}
	return n
}

// appendSectorsOf expands an LPN's staged mask into LSNs appended to the
// group arena, returning the group view and the grown arena.
func (b *Aligned) appendSectorsOf(arena []int64, lpn int64, mask uint64) ([]int64, []int64) {
	start := len(arena)
	for slot := 0; slot < b.pageSecs; slot++ {
		if mask&(1<<slot) != 0 {
			arena = append(arena, lpn*int64(b.pageSecs)+int64(slot))
		}
	}
	return arena[start:len(arena):len(arena)], arena
}

// Stage adds asynchronous small-write sectors. It returns the logical
// pages that became complete (each to be flushed as one full-page write)
// and any partial sector groups evicted by capacity pressure (each to be
// routed to the subpage region).
//
// Borrow contract: both results are buffer-owned scratch, valid only
// until the next Stage or Drain call; a retaining caller must copy.
func (b *Aligned) Stage(lsns []int64) (fullPages []int64, evicted [][]int64) {
	fullPages = b.fullBuf[:0]
	evicted = b.evictBuf[:0]
	arena := b.groupArena[:0]
	for _, lsn := range lsns {
		lpn := lsn / int64(b.pageSecs)
		bit := uint64(1) << uint(lsn%int64(b.pageSecs))
		mask, ok := b.masks[lpn]
		if mask&bit != 0 {
			continue // duplicate absorbed in place
		}
		if !ok {
			b.order = append(b.order, lpn)
		}
		mask |= bit
		b.masks[lpn] = mask
		b.sectors++
		if mask == b.fullMask() {
			fullPages = append(fullPages, lpn)
			delete(b.masks, lpn)
			b.dropLPN(lpn)
			b.sectors -= b.pageSecs
			b.merged++
		}
	}
	for b.sectors > b.maxSectors && len(b.order) > 0 {
		lpn := b.order[0]
		b.order = append(b.order[:0], b.order[1:]...)
		mask := b.masks[lpn]
		delete(b.masks, lpn)
		var group []int64
		group, arena = b.appendSectorsOf(arena, lpn, mask)
		b.sectors -= len(group)
		b.evictions += int64(len(group))
		evicted = append(evicted, group)
	}
	// Save the (possibly grown) scratch for reuse; the returned views stay
	// valid until the next Stage or Drain.
	b.fullBuf, b.evictBuf, b.groupArena = fullPages, evicted, arena
	return fullPages, evicted
}

// Remove drops any staged copies of the given sectors (they are being
// superseded by a sync write, a large write, or a trim).
func (b *Aligned) Remove(lsns []int64) {
	for _, lsn := range lsns {
		lpn := lsn / int64(b.pageSecs)
		bit := uint64(1) << uint(lsn%int64(b.pageSecs))
		mask, ok := b.masks[lpn]
		if !ok || mask&bit == 0 {
			continue
		}
		mask &^= bit
		b.sectors--
		if mask == 0 {
			delete(b.masks, lpn)
			b.dropLPN(lpn)
		} else {
			b.masks[lpn] = mask
		}
	}
}

// Drain removes and returns every staged partial group, oldest first. The
// result shares Stage's borrow contract.
func (b *Aligned) Drain() [][]int64 {
	out := b.evictBuf[:0]
	arena := b.groupArena[:0]
	for _, lpn := range b.order {
		mask := b.masks[lpn]
		delete(b.masks, lpn)
		var group []int64
		group, arena = b.appendSectorsOf(arena, lpn, mask)
		b.sectors -= len(group)
		out = append(out, group)
	}
	b.order = b.order[:0]
	b.evictBuf, b.groupArena = out, arena
	if len(out) == 0 {
		return nil
	}
	return out
}
