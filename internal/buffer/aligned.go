package buffer

import "fmt"

// Aligned is subFTL's write buffer (paper §4.1): it merges small
// asynchronous writes "with consecutive logical block addresses into one
// sequential write". Unlike the FGM buffer, which may pack arbitrary
// sectors into one physical page (fine-grained mapping permits that), the
// subFTL buffer can only complete *aligned logical pages*, because its
// full-page region is coarse-grained: a merged flush must be exactly the
// N_sub sectors of one logical page.
//
// Sectors that fail to merge leave the buffer either with their
// synchronous write or by capacity eviction, and subFTL routes them to
// the subpage region.
type Aligned struct {
	pageSecs   int
	maxSectors int
	masks      map[int64]uint64 // LPN -> staged-sector bitmask
	order      []int64          // LPN FIFO for capacity eviction
	sectors    int
	merged     int64
	evictions  int64
}

// NewAligned returns a buffer holding at most maxSectors staged sectors.
func NewAligned(pageSecs, maxSectors int) *Aligned {
	if pageSecs <= 0 || pageSecs > 64 {
		panic(fmt.Sprintf("buffer: pageSecs = %d", pageSecs))
	}
	if maxSectors < pageSecs {
		panic(fmt.Sprintf("buffer: maxSectors = %d below one page", maxSectors))
	}
	return &Aligned{
		pageSecs:   pageSecs,
		maxSectors: maxSectors,
		masks:      make(map[int64]uint64),
	}
}

// Len returns the number of staged sectors.
func (b *Aligned) Len() int { return b.sectors }

// Merged counts logical pages completed and emitted as full-page flushes.
func (b *Aligned) Merged() int64 { return b.merged }

// Evicted counts sectors pushed out by capacity pressure.
func (b *Aligned) Evicted() int64 { return b.evictions }

// Contains reports whether lsn is staged (a read hit).
func (b *Aligned) Contains(lsn int64) bool {
	mask := b.masks[lsn/int64(b.pageSecs)]
	return mask&(1<<uint(lsn%int64(b.pageSecs))) != 0
}

func (b *Aligned) fullMask() uint64 { return (uint64(1) << b.pageSecs) - 1 }

func (b *Aligned) dropLPN(lpn int64) {
	for i, v := range b.order {
		if v == lpn {
			b.order = append(b.order[:i], b.order[i+1:]...)
			return
		}
	}
}

func (b *Aligned) countBits(mask uint64) int {
	n := 0
	for ; mask != 0; mask &= mask - 1 {
		n++
	}
	return n
}

// sectorsOf expands an LPN's staged mask into LSNs.
func (b *Aligned) sectorsOf(lpn int64, mask uint64) []int64 {
	out := make([]int64, 0, b.countBits(mask))
	for slot := 0; slot < b.pageSecs; slot++ {
		if mask&(1<<slot) != 0 {
			out = append(out, lpn*int64(b.pageSecs)+int64(slot))
		}
	}
	return out
}

// Stage adds asynchronous small-write sectors. It returns the logical
// pages that became complete (each to be flushed as one full-page write)
// and any partial sector groups evicted by capacity pressure (each to be
// routed to the subpage region).
func (b *Aligned) Stage(lsns []int64) (fullPages []int64, evicted [][]int64) {
	for _, lsn := range lsns {
		lpn := lsn / int64(b.pageSecs)
		bit := uint64(1) << uint(lsn%int64(b.pageSecs))
		mask, ok := b.masks[lpn]
		if mask&bit != 0 {
			continue // duplicate absorbed in place
		}
		if !ok {
			b.order = append(b.order, lpn)
		}
		mask |= bit
		b.masks[lpn] = mask
		b.sectors++
		if mask == b.fullMask() {
			fullPages = append(fullPages, lpn)
			delete(b.masks, lpn)
			b.dropLPN(lpn)
			b.sectors -= b.pageSecs
			b.merged++
		}
	}
	for b.sectors > b.maxSectors && len(b.order) > 0 {
		lpn := b.order[0]
		b.order = b.order[1:]
		mask := b.masks[lpn]
		delete(b.masks, lpn)
		group := b.sectorsOf(lpn, mask)
		b.sectors -= len(group)
		b.evictions += int64(len(group))
		evicted = append(evicted, group)
	}
	return fullPages, evicted
}

// Remove drops any staged copies of the given sectors (they are being
// superseded by a sync write, a large write, or a trim).
func (b *Aligned) Remove(lsns []int64) {
	for _, lsn := range lsns {
		lpn := lsn / int64(b.pageSecs)
		bit := uint64(1) << uint(lsn%int64(b.pageSecs))
		mask, ok := b.masks[lpn]
		if !ok || mask&bit == 0 {
			continue
		}
		mask &^= bit
		b.sectors--
		if mask == 0 {
			delete(b.masks, lpn)
			b.dropLPN(lpn)
		} else {
			b.masks[lpn] = mask
		}
	}
}

// Drain removes and returns every staged partial group, oldest first.
func (b *Aligned) Drain() [][]int64 {
	var out [][]int64
	for _, lpn := range b.order {
		mask := b.masks[lpn]
		delete(b.masks, lpn)
		group := b.sectorsOf(lpn, mask)
		b.sectors -= len(group)
		out = append(out, group)
	}
	b.order = nil
	return out
}
