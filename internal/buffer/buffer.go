// Package buffer implements the controller write buffer that the FGM
// scheme and subFTL place in front of flash (paper §1, §4.1). Its job is
// to merge small asynchronous writes into full-page flushes; synchronous
// writes "must be stored right away and miss an opportunity to be merged
// in the write buffer", which is exactly how r_synch hurts the FGM scheme.
package buffer

import "fmt"

// Group is one flush unit handed to the FTL: a set of logical sectors to
// be written together. Len < pageSectors means a partial flush (a sync
// write or a drain) that an FGM FTL must pad to a full physical page and
// subFTL can service with subpage programs.
type Group struct {
	// LSNs are the logical sectors in the group, in buffer (FIFO) order.
	LSNs []int64
	// Sync marks groups produced by a synchronous write.
	Sync bool
}

// Buffer is a FIFO write buffer with duplicate absorption. It is a pure
// staging structure: it stores logical sector numbers, not data (the
// simulator's payloads are stamps generated at flush time).
type Buffer struct {
	pageSectors int
	order       []int64
	resident    map[int64]struct{}
	absorbed    int64
	flushedFull int64
	flushedPart int64
}

// New returns a buffer that emits full groups of pageSectors sectors.
func New(pageSectors int) *Buffer {
	if pageSectors <= 0 {
		panic(fmt.Sprintf("buffer: pageSectors = %d", pageSectors))
	}
	return &Buffer{
		pageSectors: pageSectors,
		resident:    make(map[int64]struct{}),
	}
}

// Len returns the number of buffered sectors.
func (b *Buffer) Len() int { return len(b.order) }

// Contains reports whether lsn is buffered (a read hit).
func (b *Buffer) Contains(lsn int64) bool {
	_, ok := b.resident[lsn]
	return ok
}

// Absorbed returns how many incoming sectors were duplicate hits on
// already-buffered sectors (writes the buffer absorbed entirely).
func (b *Buffer) Absorbed() int64 { return b.absorbed }

// FlushedFull and FlushedPartial count emitted groups by kind.
func (b *Buffer) FlushedFull() int64    { return b.flushedFull }
func (b *Buffer) FlushedPartial() int64 { return b.flushedPart }

// remove drops lsn from the buffer if present.
func (b *Buffer) remove(lsn int64) {
	if _, ok := b.resident[lsn]; !ok {
		return
	}
	delete(b.resident, lsn)
	for i, v := range b.order {
		if v == lsn {
			b.order = append(b.order[:i], b.order[i+1:]...)
			return
		}
	}
}

// Write stages a host write of the given sectors and returns the flush
// groups it triggers, in the order they must reach flash.
//
// Synchronous writes bypass staging: any buffered copies of their sectors
// are superseded and the write is emitted immediately as one (possibly
// partial) group. Asynchronous writes are staged; whenever a full page's
// worth of sectors has accumulated, a full group is emitted.
func (b *Buffer) Write(lsns []int64, sync bool) []Group {
	if sync {
		g := Group{LSNs: make([]int64, len(lsns)), Sync: true}
		copy(g.LSNs, lsns)
		for _, lsn := range lsns {
			b.remove(lsn)
		}
		if len(g.LSNs) >= b.pageSectors {
			b.flushedFull += int64(len(g.LSNs) / b.pageSectors)
			if len(g.LSNs)%b.pageSectors != 0 {
				b.flushedPart++
			}
		} else {
			b.flushedPart++
		}
		return []Group{g}
	}
	for _, lsn := range lsns {
		if _, ok := b.resident[lsn]; ok {
			b.absorbed++ // newer version replaces the staged one in place
			continue
		}
		b.resident[lsn] = struct{}{}
		b.order = append(b.order, lsn)
	}
	var out []Group
	for len(b.order) >= b.pageSectors {
		g := Group{LSNs: make([]int64, b.pageSectors)}
		copy(g.LSNs, b.order[:b.pageSectors])
		b.order = b.order[b.pageSectors:]
		for _, lsn := range g.LSNs {
			delete(b.resident, lsn)
		}
		b.flushedFull++
		out = append(out, g)
	}
	return out
}

// PopUpTo removes and returns up to n of the oldest buffered sectors.
// FGM-style FTLs with opportunistic fill use it to top up a partial sync
// flush with staged asynchronous sectors instead of padding.
func (b *Buffer) PopUpTo(n int) []int64 {
	if n > len(b.order) {
		n = len(b.order)
	}
	if n <= 0 {
		return nil
	}
	out := make([]int64, n)
	copy(out, b.order[:n])
	b.order = b.order[n:]
	for _, lsn := range out {
		delete(b.resident, lsn)
	}
	return out
}

// Trim drops any buffered copies of the given sectors (host discard).
func (b *Buffer) Trim(lsns []int64) {
	for _, lsn := range lsns {
		b.remove(lsn)
	}
}

// Drain flushes everything left in the buffer as one final (possibly
// partial) group. It returns nil when the buffer is empty.
func (b *Buffer) Drain() []Group {
	if len(b.order) == 0 {
		return nil
	}
	var out []Group
	for len(b.order) > 0 {
		n := b.pageSectors
		if n > len(b.order) {
			n = len(b.order)
		}
		g := Group{LSNs: make([]int64, n)}
		copy(g.LSNs, b.order[:n])
		b.order = b.order[n:]
		for _, lsn := range g.LSNs {
			delete(b.resident, lsn)
		}
		if n == b.pageSectors {
			b.flushedFull++
		} else {
			b.flushedPart++
		}
		out = append(out, g)
	}
	return out
}
