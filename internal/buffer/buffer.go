// Package buffer implements the controller write buffer that the FGM
// scheme and subFTL place in front of flash (paper §1, §4.1). Its job is
// to merge small asynchronous writes into full-page flushes; synchronous
// writes "must be stored right away and miss an opportunity to be merged
// in the write buffer", which is exactly how r_synch hurts the FGM scheme.
package buffer

import "fmt"

// Group is one flush unit handed to the FTL: a set of logical sectors to
// be written together. Len < pageSectors means a partial flush (a sync
// write or a drain) that an FGM FTL must pad to a full physical page and
// subFTL can service with subpage programs.
type Group struct {
	// LSNs are the logical sectors in the group, in buffer (FIFO) order.
	LSNs []int64
	// Sync marks groups produced by a synchronous write.
	Sync bool
}

// Buffer is a FIFO write buffer with duplicate absorption. It is a pure
// staging structure: it stores logical sector numbers, not data (the
// simulator's payloads are stamps generated at flush time).
type Buffer struct {
	pageSectors int
	// order[head:] is the FIFO of staged sectors; popping advances head
	// instead of re-slicing so the backing array is reused rather than
	// abandoned (the steady-state staging path must not allocate).
	order       []int64
	head        int
	resident    map[int64]struct{}
	absorbed    int64
	flushedFull int64
	flushedPart int64

	// groupsBuf and lsnArena back the groups Write and Drain return; see
	// the borrow contract on Write. popBuf backs PopUpTo separately, since
	// opportunistic fill calls it while holding a returned group.
	groupsBuf []Group
	lsnArena  []int64
	popBuf    []int64
}

// New returns a buffer that emits full groups of pageSectors sectors.
func New(pageSectors int) *Buffer {
	if pageSectors <= 0 {
		panic(fmt.Sprintf("buffer: pageSectors = %d", pageSectors))
	}
	return &Buffer{
		pageSectors: pageSectors,
		resident:    make(map[int64]struct{}),
	}
}

// Len returns the number of buffered sectors.
func (b *Buffer) Len() int { return len(b.order) - b.head }

// staged returns the live FIFO window.
func (b *Buffer) staged() []int64 { return b.order[b.head:] }

// advance pops n sectors off the FIFO head, reclaiming the backing array
// once it empties (and compacting when the dead prefix dominates) so the
// append path reuses capacity instead of growing forever.
func (b *Buffer) advance(n int) {
	b.head += n
	if b.head == len(b.order) {
		b.order = b.order[:0]
		b.head = 0
	} else if b.head >= 256 && b.head*2 >= len(b.order) {
		m := copy(b.order, b.order[b.head:])
		b.order = b.order[:m]
		b.head = 0
	}
}

// appendGroup copies lsns into the reusable arena and appends a Group
// viewing that copy.
func (b *Buffer) appendGroup(groups []Group, lsns []int64, sync bool) []Group {
	start := len(b.lsnArena)
	b.lsnArena = append(b.lsnArena, lsns...)
	return append(groups, Group{LSNs: b.lsnArena[start:len(b.lsnArena):len(b.lsnArena)], Sync: sync})
}

// Contains reports whether lsn is buffered (a read hit).
func (b *Buffer) Contains(lsn int64) bool {
	_, ok := b.resident[lsn]
	return ok
}

// Absorbed returns how many incoming sectors were duplicate hits on
// already-buffered sectors (writes the buffer absorbed entirely).
func (b *Buffer) Absorbed() int64 { return b.absorbed }

// FlushedFull and FlushedPartial count emitted groups by kind.
func (b *Buffer) FlushedFull() int64    { return b.flushedFull }
func (b *Buffer) FlushedPartial() int64 { return b.flushedPart }

// remove drops lsn from the buffer if present.
func (b *Buffer) remove(lsn int64) {
	if _, ok := b.resident[lsn]; !ok {
		return
	}
	delete(b.resident, lsn)
	for i := b.head; i < len(b.order); i++ {
		if b.order[i] == lsn {
			b.order = append(b.order[:i], b.order[i+1:]...)
			return
		}
	}
}

// Write stages a host write of the given sectors and returns the flush
// groups it triggers, in the order they must reach flash.
//
// Synchronous writes bypass staging: any buffered copies of their sectors
// are superseded and the write is emitted immediately as one (possibly
// partial) group. Asynchronous writes are staged; whenever a full page's
// worth of sectors has accumulated, a full group is emitted.
//
// Borrow contract: the returned groups (and their LSN slices) are
// buffer-owned scratch, valid only until the next Write or Drain call; a
// retaining caller must copy. Callers consume groups before writing again,
// so the steady-state staging path allocates nothing.
func (b *Buffer) Write(lsns []int64, sync bool) []Group {
	b.groupsBuf = b.groupsBuf[:0]
	b.lsnArena = b.lsnArena[:0]
	if sync {
		out := b.appendGroup(b.groupsBuf, lsns, true)
		for _, lsn := range lsns {
			b.remove(lsn)
		}
		if len(lsns) >= b.pageSectors {
			b.flushedFull += int64(len(lsns) / b.pageSectors)
			if len(lsns)%b.pageSectors != 0 {
				b.flushedPart++
			}
		} else {
			b.flushedPart++
		}
		b.groupsBuf = out
		return out
	}
	for _, lsn := range lsns {
		if _, ok := b.resident[lsn]; ok {
			b.absorbed++ // newer version replaces the staged one in place
			continue
		}
		b.resident[lsn] = struct{}{}
		b.order = append(b.order, lsn)
	}
	out := b.groupsBuf
	for b.Len() >= b.pageSectors {
		grp := b.staged()[:b.pageSectors]
		out = b.appendGroup(out, grp, false)
		for _, lsn := range grp {
			delete(b.resident, lsn)
		}
		b.advance(b.pageSectors)
		b.flushedFull++
	}
	b.groupsBuf = out
	return out
}

// PopUpTo removes and returns up to n of the oldest buffered sectors.
// FGM-style FTLs with opportunistic fill use it to top up a partial sync
// flush with staged asynchronous sectors instead of padding. The returned
// slice is buffer-owned scratch, valid until the next PopUpTo call.
func (b *Buffer) PopUpTo(n int) []int64 {
	if n > b.Len() {
		n = b.Len()
	}
	if n <= 0 {
		return nil
	}
	if cap(b.popBuf) < n {
		b.popBuf = make([]int64, n)
	}
	out := b.popBuf[:n]
	copy(out, b.staged()[:n])
	b.advance(n)
	for _, lsn := range out {
		delete(b.resident, lsn)
	}
	return out
}

// Trim drops any buffered copies of the given sectors (host discard).
func (b *Buffer) Trim(lsns []int64) {
	for _, lsn := range lsns {
		b.remove(lsn)
	}
}

// Drain flushes everything left in the buffer as one final (possibly
// partial) group. It returns nil when the buffer is empty. The returned
// groups share Write's borrow contract.
func (b *Buffer) Drain() []Group {
	if b.Len() == 0 {
		return nil
	}
	b.groupsBuf = b.groupsBuf[:0]
	b.lsnArena = b.lsnArena[:0]
	out := b.groupsBuf
	for b.Len() > 0 {
		n := b.pageSectors
		if n > b.Len() {
			n = b.Len()
		}
		grp := b.staged()[:n]
		out = b.appendGroup(out, grp, false)
		for _, lsn := range grp {
			delete(b.resident, lsn)
		}
		b.advance(n)
		if n == b.pageSectors {
			b.flushedFull++
		} else {
			b.flushedPart++
		}
	}
	b.groupsBuf = out
	return out
}
