package sim

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGInt63nRange(t *testing.T) {
	r := NewRNG(9)
	const n = int64(1) << 40
	for i := 0; i < 1000; i++ {
		v := r.Int63n(n)
		if v < 0 || v >= n {
			t.Fatalf("Int63n = %d out of range", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of range", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGBoolEdges(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", p)
	}
}

func TestRNGShufflePermutation(t *testing.T) {
	r := NewRNG(8)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		if v < 0 || v >= 8 || seen[v] {
			t.Fatalf("shuffle result not a permutation: %v", xs)
		}
		seen[v] = true
	}
}
