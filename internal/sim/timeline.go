package sim

import "fmt"

// Timeline tracks when a serially-used resource (a NAND chip, a channel
// bus) becomes free. Operations reserve intervals; overlapping requests are
// queued behind the current occupant, which models the resource's natural
// serialization without a full event queue.
type Timeline struct {
	name string
	// freeAt is the first instant at which the resource is idle.
	freeAt Time
	// busy accumulates total occupied time, for utilization reporting.
	busy Duration
	// ops counts reservations.
	ops int64
}

// NewTimeline returns a timeline for a named resource, idle from time zero.
func NewTimeline(name string) *Timeline { return &Timeline{name: name} }

// Name returns the resource name given at construction.
func (tl *Timeline) Name() string { return tl.name }

// FreeAt returns the first instant the resource is idle.
func (tl *Timeline) FreeAt() Time { return tl.freeAt }

// Busy returns the cumulative time the resource has been occupied.
func (tl *Timeline) Busy() Duration { return tl.busy }

// Ops returns the number of reservations made on the resource.
func (tl *Timeline) Ops() int64 { return tl.ops }

// Reserve books the resource for duration d starting no earlier than
// earliest.
//
// Granted-start contract: the caller's earliest is a lower bound, not a
// claim. When an earlier reservation still occupies the resource past
// earliest, the new reservation is queued behind it — the returned start
// is max(earliest, FreeAt), end is start+d, and the resource is busy
// until end afterwards. Callers issuing concurrent (overlapping) work —
// the host scheduler dispatching to a busy chip, read-retry steps
// stacked on a sense — must therefore use the *returned* start/end for
// any derived timing, never the earliest they asked for. Reservations
// never overlap and never move already-granted intervals.
func (tl *Timeline) Reserve(earliest Time, d Duration) (start, end Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative reservation %v on %s", d, tl.name))
	}
	start = earliest
	if tl.freeAt > start {
		start = tl.freeAt
	}
	end = start.Add(d)
	tl.freeAt = end
	tl.busy += d
	tl.ops++
	return start, end
}

// Utilization reports busy time as a fraction of the elapsed horizon. A
// horizon of zero reports zero utilization.
func (tl *Timeline) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(tl.busy) / float64(horizon)
}

// Reset returns the timeline to idle at time zero, clearing statistics.
func (tl *Timeline) Reset() {
	tl.freeAt = 0
	tl.busy = 0
	tl.ops = 0
}

// MaxFree returns the latest FreeAt across the given timelines, i.e. the
// time at which all of them have drained. A nil or empty slice yields zero.
func MaxFree(tls []*Timeline) Time {
	var m Time
	for _, tl := range tls {
		if tl.FreeAt() > m {
			m = tl.FreeAt()
		}
	}
	return m
}
