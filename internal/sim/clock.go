// Package sim provides the discrete virtual-time substrate used by the SSD
// simulator: a monotonic virtual clock plus per-resource busy timelines that
// model contention on chips and channel buses.
//
// The simulator is not event driven in the classic sense; instead every
// flash operation reserves an interval on the timeline of each resource it
// occupies, and the host-visible elapsed time is the maximum completion time
// across all resources. This "timeline accounting" model is sufficient for
// throughput-shaped experiments (IOPS, GC counts) and keeps the simulator
// deterministic and fast.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start of
// the simulation. It is deliberately distinct from time.Time: simulations
// never consult the wall clock.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = time.Duration

// Common virtual durations.
const (
	Microsecond = Time(1000)
	Millisecond = Time(1000 * 1000)
	Second      = Time(1000 * 1000 * 1000)
	Day         = 24 * 3600 * Second
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the virtual time as a duration from simulation start.
func (t Time) String() string { return Duration(t).String() }

// Clock is the simulation-wide virtual clock. The zero value is a clock at
// time zero, ready to use.
//
// The clock only moves forward; Advance with a negative duration panics
// because it always indicates a simulator bug (an operation completing
// before it started).
type Clock struct {
	now Time
}

// NewClock returns a clock starting at the given origin.
func NewClock(origin Time) *Clock { return &Clock{now: origin} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d and returns the new time.
func (c *Clock) Advance(d Duration) Time {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock advanced by negative duration %v", d))
	}
	c.now += Time(d)
	return c.now
}

// AdvanceTo moves the clock to t if t is in the future; otherwise the clock
// is unchanged. It returns the (possibly unchanged) current time.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}
