package sim

import "time"

// Gate paces virtual time against the wall clock for service mode: a
// served device's simulated latencies only shape the latencies clients
// observe if completions are delivered no earlier than their virtual
// completion instant maps to on the wall clock.
//
// A gate is an affine map between the two axes, anchored at construction:
// speedup S means S nanoseconds of virtual time elapse per wall
// nanosecond (S=1 is real time, S=100 compresses a 100 s workload into
// 1 s of wall time). A speedup of 0 (or any non-positive value) is the
// "as fast as possible" gate used by tests and batch replays: it never
// waits and maps every virtual instant to the past.
//
// The gate itself is stateless after construction and safe for
// concurrent use.
type Gate struct {
	speedup float64
	origin  time.Time
	vorigin Time
	now     func() time.Time
}

// NewGate anchors a gate at the current wall instant and the given
// virtual origin (normally the device clock's current reading).
func NewGate(speedup float64, vorigin Time) *Gate {
	return NewGateAt(speedup, vorigin, time.Now)
}

// NewGateAt is NewGate with an injectable wall-clock source, for tests.
func NewGateAt(speedup float64, vorigin Time, now func() time.Time) *Gate {
	return &Gate{speedup: speedup, origin: now(), vorigin: vorigin, now: now}
}

// Realtime reports whether the gate paces at all; false means as fast as
// possible.
func (g *Gate) Realtime() bool { return g != nil && g.speedup > 0 }

// Speedup returns the configured virtual-per-wall ratio (0 when not
// pacing).
func (g *Gate) Speedup() float64 {
	if !g.Realtime() {
		return 0
	}
	return g.speedup
}

// VirtualNow maps the current wall instant onto the virtual axis. A
// non-pacing gate pins it at the virtual origin: with no wall coupling,
// arrivals take whatever virtual time the event loop has reached.
func (g *Gate) VirtualNow() Time {
	if !g.Realtime() {
		return g.vorigin
	}
	wall := g.now().Sub(g.origin)
	return g.vorigin + Time(float64(wall)*g.speedup)
}

// WallUntil returns how long the wall clock has to run before virtual
// instant v is reached; zero or negative means v has already passed (and
// always, for a non-pacing gate).
func (g *Gate) WallUntil(v Time) time.Duration {
	if !g.Realtime() {
		return 0
	}
	target := g.origin.Add(time.Duration(float64(v-g.vorigin) / g.speedup))
	return target.Sub(g.now())
}

// Wait sleeps until virtual instant v is reached on the wall clock; it
// returns immediately for a non-pacing gate or an instant in the past.
func (g *Gate) Wait(v Time) {
	if d := g.WallUntil(v); d > 0 {
		time.Sleep(d)
	}
}
