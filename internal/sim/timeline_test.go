package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimelineReserveSequential(t *testing.T) {
	tl := NewTimeline("chip0")
	s, e := tl.Reserve(0, 100*time.Nanosecond)
	if s != 0 || e != 100 {
		t.Fatalf("first reserve = [%v,%v], want [0,100]", s, e)
	}
	// A request arriving at t=10 must queue behind the first.
	s, e = tl.Reserve(10, 50*time.Nanosecond)
	if s != 100 || e != 150 {
		t.Fatalf("queued reserve = [%v,%v], want [100,150]", s, e)
	}
	// A request arriving after the resource drained starts immediately.
	s, e = tl.Reserve(1000, 25*time.Nanosecond)
	if s != 1000 || e != 1025 {
		t.Fatalf("idle reserve = [%v,%v], want [1000,1025]", s, e)
	}
}

func TestTimelineBusyAccounting(t *testing.T) {
	tl := NewTimeline("bus")
	tl.Reserve(0, 40*time.Nanosecond)
	tl.Reserve(0, 60*time.Nanosecond)
	if got := tl.Busy(); got != 100*time.Nanosecond {
		t.Fatalf("Busy = %v, want 100ns", got)
	}
	if got := tl.Ops(); got != 2 {
		t.Fatalf("Ops = %d, want 2", got)
	}
	if u := tl.Utilization(200); u != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", u)
	}
	if u := tl.Utilization(0); u != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", u)
	}
}

func TestTimelineReset(t *testing.T) {
	tl := NewTimeline("chip")
	tl.Reserve(0, time.Microsecond)
	tl.Reset()
	if tl.FreeAt() != 0 || tl.Busy() != 0 || tl.Ops() != 0 {
		t.Fatalf("Reset left state: freeAt=%v busy=%v ops=%d", tl.FreeAt(), tl.Busy(), tl.Ops())
	}
}

func TestTimelineNegativeReservePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Reserve did not panic")
		}
	}()
	NewTimeline("x").Reserve(0, -time.Nanosecond)
}

func TestMaxFree(t *testing.T) {
	a, b, c := NewTimeline("a"), NewTimeline("b"), NewTimeline("c")
	a.Reserve(0, 10*time.Nanosecond)
	b.Reserve(0, 30*time.Nanosecond)
	c.Reserve(0, 20*time.Nanosecond)
	if got := MaxFree([]*Timeline{a, b, c}); got != 30 {
		t.Fatalf("MaxFree = %v, want 30", got)
	}
	if got := MaxFree(nil); got != 0 {
		t.Fatalf("MaxFree(nil) = %v, want 0", got)
	}
}

// Regression for the granted-start contract under concurrent issue: when
// several overlapping requests are issued against the same resource at
// the same earliest time — exactly what the host scheduler does when it
// dispatches a burst of commands to one chip while the clock stands
// still — each reservation must be granted the start *after* the
// previously granted work, never the earliest the caller asked for, and
// the grants must tile the timeline without overlap.
func TestTimelineOverlappingReservationsQueue(t *testing.T) {
	tl := NewTimeline("chip")
	durs := []time.Duration{70, 30, 50, 10}
	var prevEnd Time
	for i, d := range durs {
		s, e := tl.Reserve(0, d) // all claim earliest = 0
		if s != prevEnd {
			t.Fatalf("reservation %d granted start %v, want %v (queued behind prior work)", i, s, prevEnd)
		}
		if e != s.Add(d) {
			t.Fatalf("reservation %d end %v, want start+%v", i, e, d)
		}
		if i > 0 && s == 0 {
			t.Fatalf("reservation %d was granted the requested start despite the resource being busy", i)
		}
		prevEnd = e
	}
	if tl.FreeAt() != 160 {
		t.Fatalf("FreeAt = %v, want 160 (sum of all reservations)", tl.FreeAt())
	}
	// A caller whose earliest lands mid-reservation is pushed past it.
	s, e := tl.Reserve(150, 40)
	if s != 160 || e != 200 {
		t.Fatalf("mid-busy reserve = [%v,%v], want [160,200]", s, e)
	}
}

// Property: reservations never overlap and never start before the
// requested earliest time; busy time equals the sum of all durations.
func TestTimelineNoOverlapProperty(t *testing.T) {
	f := func(reqs []struct {
		Arrive uint16
		Dur    uint8
	}) bool {
		tl := NewTimeline("p")
		var prevEnd Time
		var total time.Duration
		for _, q := range reqs {
			d := time.Duration(q.Dur)
			s, e := tl.Reserve(Time(q.Arrive), d)
			if s < Time(q.Arrive) || s < prevEnd || e != s.Add(d) {
				return false
			}
			prevEnd = e
			total += d
		}
		return tl.Busy() == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
