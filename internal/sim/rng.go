package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). The simulator must be reproducible run-to-run, so all
// stochastic choices (workload mixes, Zipf sampling, victim tie-breaking)
// flow through seeded RNG instances rather than math/rand's global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; the same seed always gives the same stream.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: RNG.Int63n called with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
