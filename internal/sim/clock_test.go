package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(0)
	c.Advance(time.Microsecond)
	if got := c.Now(); got != Microsecond {
		t.Fatalf("Now() = %v, want %v", got, Microsecond)
	}
	c.Advance(2 * time.Microsecond)
	if got := c.Now(); got != 3*Microsecond {
		t.Fatalf("Now() = %v, want %v", got, 3*Microsecond)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock(0).Advance(-time.Nanosecond)
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock(100)
	if got := c.AdvanceTo(50); got != 100 {
		t.Fatalf("AdvanceTo(past) = %v, want 100 (no-op)", got)
	}
	if got := c.AdvanceTo(250); got != 250 {
		t.Fatalf("AdvanceTo(250) = %v, want 250", got)
	}
	if got := c.Now(); got != 250 {
		t.Fatalf("Now() = %v, want 250", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(1000)
	b := a.Add(500 * time.Nanosecond)
	if b != 1500 {
		t.Fatalf("Add = %v, want 1500", b)
	}
	if d := b.Sub(a); d != 500*time.Nanosecond {
		t.Fatalf("Sub = %v, want 500ns", d)
	}
	if s := Second.Seconds(); s != 1.0 {
		t.Fatalf("Seconds = %v, want 1.0", s)
	}
}

func TestTimeString(t *testing.T) {
	if got := (2 * Millisecond).String(); got != "2ms" {
		t.Fatalf("String = %q, want 2ms", got)
	}
}

// Property: the clock is monotone non-decreasing under any sequence of
// Advance/AdvanceTo calls with non-negative arguments.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewClock(0)
		prev := c.Now()
		for i, s := range steps {
			var now Time
			if i%2 == 0 {
				now = c.Advance(time.Duration(s))
			} else {
				now = c.AdvanceTo(Time(s))
			}
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
