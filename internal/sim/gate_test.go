package sim

import (
	"testing"
	"time"
)

// fakeWall is an injectable wall clock.
type fakeWall struct{ t time.Time }

func (w *fakeWall) now() time.Time { return w.t }

func TestGateMapsVirtualToWall(t *testing.T) {
	wall := &fakeWall{t: time.Unix(1000, 0)}
	// 100x speedup anchored at virtual 5 s.
	g := NewGateAt(100, Time(5*Second), wall.now)
	if !g.Realtime() {
		t.Fatal("pacing gate reports non-realtime")
	}
	if got := g.VirtualNow(); got != Time(5*Second) {
		t.Fatalf("VirtualNow at origin: %v", got)
	}
	// 10 ms of wall time = 1 s of virtual time at 100x.
	wall.t = wall.t.Add(10 * time.Millisecond)
	if got := g.VirtualNow(); got != Time(6*Second) {
		t.Fatalf("VirtualNow after 10ms wall: %v (want 6s)", got)
	}
	// Virtual 7 s is another 10 ms of wall time away.
	if d := g.WallUntil(Time(7 * Second)); d != 10*time.Millisecond {
		t.Fatalf("WallUntil(7s) = %v (want 10ms)", d)
	}
	// Already-passed instants owe no wait.
	if d := g.WallUntil(Time(5 * Second)); d > 0 {
		t.Fatalf("WallUntil(past) = %v (want <= 0)", d)
	}
}

func TestGateAsFastAsPossible(t *testing.T) {
	wall := &fakeWall{t: time.Unix(1000, 0)}
	g := NewGateAt(0, Time(3*Second), wall.now)
	if g.Realtime() {
		t.Fatal("AFAP gate reports realtime")
	}
	wall.t = wall.t.Add(time.Hour)
	if got := g.VirtualNow(); got != Time(3*Second) {
		t.Fatalf("AFAP VirtualNow moved to %v", got)
	}
	if d := g.WallUntil(Time(1e18)); d != 0 {
		t.Fatalf("AFAP WallUntil = %v (want 0)", d)
	}
	if g.Speedup() != 0 {
		t.Fatalf("AFAP Speedup = %v", g.Speedup())
	}
}

func TestGateNilSafe(t *testing.T) {
	var g *Gate
	if g.Realtime() {
		t.Fatal("nil gate reports realtime")
	}
}
