// Benchmarks, one per paper artifact (testing.B drives the same harness
// functions that cmd/espbench uses, at reduced size so `go test -bench=.`
// completes in minutes), plus microbenchmarks for the hot substrate paths.
package espftl

import (
	"fmt"
	"testing"

	"espftl/internal/buffer"
	"espftl/internal/experiment"
	"espftl/internal/ftl/cgm"
	"espftl/internal/gc"
	"espftl/internal/mapping"
	"espftl/internal/nand"
	"espftl/internal/sim"
	"espftl/internal/workload"
)

// benchOpts shrinks the experiments so a full -bench=. pass stays fast.
// The geometry is the experiment package's quick device: shrinking blocks
// further over-commits the 62 % logical fraction on the page-mapped FTLs
// (cgm/fgm run out of spare blocks during preconditioning).
func benchOpts() experiment.Options {
	return experiment.Options{
		Geometry: experiment.QuickGeometry,
		Requests: 4000,
		Seed:     1,
	}
}

func benchFigure(b *testing.B, fn func(experiment.Options) (*experiment.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := fn(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2aIOPSSweep regenerates Fig. 2(a): CGM & FGM IOPS vs r_small.
func BenchmarkFig2aIOPSSweep(b *testing.B) { benchFigure(b, experiment.Fig2a) }

// BenchmarkFig2bGCSweep regenerates Fig. 2(b): FGM GC invocations sweep.
func BenchmarkFig2bGCSweep(b *testing.B) { benchFigure(b, experiment.Fig2b) }

// BenchmarkFig5RetentionModel regenerates Fig. 5: the retention model.
func BenchmarkFig5RetentionModel(b *testing.B) { benchFigure(b, experiment.Fig5) }

// BenchmarkFig8aIOPS regenerates Fig. 8(a): three FTLs on five benchmarks.
func BenchmarkFig8aIOPS(b *testing.B) { benchFigure(b, experiment.Fig8a) }

// BenchmarkFig8bGC regenerates Fig. 8(b): GC invocations, fgm vs sub.
func BenchmarkFig8bGC(b *testing.B) { benchFigure(b, experiment.Fig8b) }

// BenchmarkTable1RequestWAF regenerates Table 1: subFTL request WAF.
func BenchmarkTable1RequestWAF(b *testing.B) { benchFigure(b, experiment.Table1) }

// BenchmarkAblationRegionRatio sweeps the subpage-region size.
func BenchmarkAblationRegionRatio(b *testing.B) { benchFigure(b, experiment.AblationRegionRatio) }

// BenchmarkAblationHotCold toggles the hot/cold GC split.
func BenchmarkAblationHotCold(b *testing.B) { benchFigure(b, experiment.AblationHotCold) }

// BenchmarkAblationRetention exercises the retention-management ablation.
func BenchmarkAblationRetention(b *testing.B) { benchFigure(b, experiment.AblationRetention) }

// BenchmarkAblationFaultRecovery measures the recovery cost under the
// default fault profile vs the fault-free device.
func BenchmarkAblationFaultRecovery(b *testing.B) { benchFigure(b, experiment.AblationFaultRecovery) }

// BenchmarkAblationScheduler sweeps the host scheduler's queue depth and
// arbitration grid and reports tail latency.
func BenchmarkAblationScheduler(b *testing.B) { benchFigure(b, experiment.AblationScheduler) }

// BenchmarkAblationGCPolicy sweeps GC victim policy × queue depth and
// reports read tail latency and WAF under sustained write pressure.
func BenchmarkAblationGCPolicy(b *testing.B) { benchFigure(b, experiment.AblationGCPolicy) }

// BenchmarkAblationLifetime sweeps erase-depth policy × longevity
// placement on the hot/cold profile.
func BenchmarkAblationLifetime(b *testing.B) { benchFigure(b, experiment.AblationLifetime) }

// BenchmarkExtSubpageRead measures the §7 subpage-read extension.
func BenchmarkExtSubpageRead(b *testing.B) { benchFigure(b, experiment.ExtSubpageRead) }

// BenchmarkExtLifetime regenerates the erase-rate lifetime projection.
func BenchmarkExtLifetime(b *testing.B) { benchFigure(b, experiment.ExtLifetime) }

// BenchmarkExtLifetime2 measures the lifetime subsystem end to end:
// adaptive erase depth plus longevity placement on subFTL.
func BenchmarkExtLifetime2(b *testing.B) { benchFigure(b, experiment.ExtLifetime2) }

// BenchmarkExtLatency regenerates the service-demand percentile table.
func BenchmarkExtLatency(b *testing.B) { benchFigure(b, experiment.ExtLatency) }

// BenchmarkFTLWrite measures per-request write cost (simulator wall time,
// not virtual time) for each FTL under a sync-small-heavy stream.
func BenchmarkFTLWrite(b *testing.B) {
	for _, kind := range []FTLKind{CGMFTL, FGMFTL, SubFTL} {
		b.Run(string(kind), func(b *testing.B) {
			mk := func() *SSD {
				ssd, err := New(Config{
					FTL: kind,
					Geometry: Geometry{
						Channels: 8, ChipsPerChannel: 4, BlocksPerChip: 16,
						PagesPerBlock: 32, SubpagesPerPage: 4, SubpageBytes: 4096,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				return ssd
			}
			ssd := mk()
			space := ssd.LogicalSectors()
			rng := sim.NewRNG(7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A large b.N would write this small drive past its rated
				// endurance (a genuine wear-out, not a bug); swap in a
				// fresh drive periodically.
				if i > 0 && i%100000 == 0 {
					b.StopTimer()
					ssd = mk()
					b.StartTimer()
				}
				// Hot/cold locality as in the paper's workloads; fully
				// uniform sync writes would grind any 20%-region layout.
				lsn := rng.Int63n(space / 64)
				if rng.Bool(0.1) {
					lsn = rng.Int63n(space)
				}
				if err := ssd.Write(lsn, 1, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGCStep measures one bounded incremental collection step —
// victim selection over the per-block view plus up to StepPages page
// relocations — on a page-mapped store whose blocks are half invalid.
func BenchmarkGCStep(b *testing.B) {
	mk := func() *cgm.FTL {
		cfg := nand.DefaultConfig()
		cfg.Geometry = Geometry{
			Channels: 8, ChipsPerChannel: 4, BlocksPerChip: 16,
			PagesPerBlock: 32, SubpagesPerPage: 4, SubpageBytes: 4096,
		}
		dev, err := nand.NewDevice(cfg, sim.NewClock(0))
		if err != nil {
			b.Fatal(err)
		}
		g := dev.Geometry()
		ps := int64(g.SubpagesPerPage)
		logical := int64(float64(g.TotalSubpages())*0.50) / ps * ps
		f, err := cgm.New(dev, cgm.Config{
			LogicalSectors:  logical,
			GCReserveBlocks: g.Chips() + 4,
			// Slack above the block count makes every Tick run one step
			// regardless of pool pressure: the loop measures the step
			// machinery, not the trigger heuristics.
			GC: gc.Options{Policy: "greedy", StepPages: 8, BackgroundSlack: g.TotalBlocks()},
		})
		if err != nil {
			b.Fatal(err)
		}
		// Fill the logical space, then overwrite every other page, so the
		// collector always finds half-valid victims with real copy work.
		for pass := int64(1); pass <= 2; pass++ {
			for lsn := int64(0); lsn < logical; lsn += ps * pass {
				if err := f.Write(lsn, int(ps), false); err != nil {
					b.Fatal(err)
				}
			}
		}
		return f
	}
	f := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Long runs wear the small drive out (steps erase blocks); swap in
		// a fresh pressured drive periodically, off the clock.
		if i > 0 && i%10000 == 0 {
			b.StopTimer()
			f = mk()
			b.StartTimer()
		}
		if err := f.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceProgramSubpage measures the raw device model's subpage
// program path.
func BenchmarkDeviceProgramSubpage(b *testing.B) {
	cfg := nand.DefaultConfig()
	dev, err := nand.NewDevice(cfg, sim.NewClock(0))
	if err != nil {
		b.Fatal(err)
	}
	g := dev.Geometry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := nand.BlockID(i % g.TotalBlocks())
		page := g.PageOf(blk, (i/g.TotalBlocks())%g.PagesPerBlock)
		sub := (i / int(g.TotalPages())) % g.SubpagesPerPage
		if _, err := dev.ProgramSubpage(page, sub, nand.Stamp{LSN: int64(i)}); err != nil {
			// Reuse exhausted: erase and continue.
			if _, e := dev.Erase(blk); e != nil {
				b.Fatal(e)
			}
		}
	}
}

// BenchmarkHashTable measures the subpage-mapping hash table.
func BenchmarkHashTable(b *testing.B) {
	h := mapping.NewHashTable(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i % (1 << 15))
		if err := h.Put(k, int64(i)); err != nil {
			b.Fatal(err)
		}
		if _, ok := h.Get(k); !ok {
			b.Fatal("missing key")
		}
	}
}

// BenchmarkWriteBuffer measures the FGM write buffer's staging path.
func BenchmarkWriteBuffer(b *testing.B) {
	buf := buffer.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Write([]int64{int64(i % 4096)}, i%8 == 0)
	}
}

// BenchmarkWorkloadGenerator measures synthetic request generation.
func BenchmarkWorkloadGenerator(b *testing.B) {
	for _, prof := range workload.Benchmarks() {
		b.Run(prof.Name, func(b *testing.B) {
			gen, err := workload.NewSynthetic(prof, 1<<20, 4, 3)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := gen.Next()
				if r.Sectors <= 0 && r.Op != workload.OpAdvance {
					b.Fatal("bad request")
				}
			}
		})
	}
}

// BenchmarkRetentionModel measures the per-read reliability decision.
func BenchmarkRetentionModel(b *testing.B) {
	m := nand.DefaultRetention
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := nand.NppType(i % 4)
		if !m.Correctable(k, nand.Month/2, m.RatedPE) {
			b.Fatal("half-month data must be correctable")
		}
	}
}

// Example-style smoke check so `go test` exercises the bench harness too.
func TestBenchOptionsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	table, err := experiment.Fig5(benchOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("fig5 rows = %d", len(table.Rows))
	}
	out := table.String()
	if out == "" || fmt.Sprintf("%s", table.Markdown()) == "" {
		t.Fatal("empty rendering")
	}
}
