// Retention: demonstrate why ESP needs retention management. Data written
// with erase-free subpage programming holds for about one month; subFTL's
// 15-day scrub moves long-lived subpages to the full-page region before
// they expire. This example parks data for six months — once with the
// retention manager on, once with it off — and shows the difference
// between a background migration and an uncorrectable ECC error.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"espftl"
	"espftl/internal/nand"
)

func park(disableRetention bool) {
	ssd, err := espftl.New(espftl.Config{
		FTL: espftl.SubFTL,
		Geometry: espftl.Geometry{
			Channels:        2,
			ChipsPerChannel: 2,
			BlocksPerChip:   8,
			PagesPerBlock:   8,
			SubpagesPerPage: 4,
			SubpageBytes:    4096,
		},
		LogicalSectors:   512,
		DisableRetention: disableRetention,
	})
	if err != nil {
		log.Fatal(err)
	}
	// A burst of synchronous small writes lands in the subpage region;
	// churning a tiny hot set pushes pages into their second and third
	// ESP passes, so the newest copies are N1pp+ subpages with reduced
	// retention capability.
	for i := 0; i < 64; i++ {
		if err := ssd.Write(int64(i%4), 1, true); err != nil {
			log.Fatal(err)
		}
	}

	// Park the drive for six months, a day at a time (each Idle lets the
	// FTL run its retention scrub).
	for day := 0; day < 180; day++ {
		if err := ssd.Idle(24 * time.Hour); err != nil {
			log.Fatal(err)
		}
	}

	err = ssd.Read(0, 4)
	s := ssd.Stats()
	mode := "retention management ON (paper §4.3)"
	if disableRetention {
		mode = "retention management OFF"
	}
	fmt.Printf("%s:\n", mode)
	fmt.Printf("  retention moves: %d\n", s.RetentionMoves)
	switch {
	case err == nil:
		fmt.Printf("  read after 6 months: OK — data was migrated to full-page (N0pp) storage in time\n")
	case errors.Is(err, nand.ErrUncorrectable):
		fmt.Printf("  read after 6 months: UNCORRECTABLE ECC ERROR — the ESP subpage exceeded its retention capability\n")
	default:
		log.Fatalf("unexpected error: %v", err)
	}
	fmt.Println()
}

func main() {
	m := nand.DefaultRetention
	fmt.Println("subpage retention capabilities at rated wear (1K P/E):")
	for k := nand.NppType(0); k <= 3; k++ {
		fmt.Printf("  %v: %5.1f days\n", k, m.RetentionCapability(k, m.RatedPE).Hours()/24)
	}
	fmt.Println()
	park(false)
	park(true)
}
