// Trace replay: generate a Varmail-style trace once, then replay the same
// trace through the three FTLs and compare them — the core experiment of
// the paper's evaluation, as a ~60-line program against the public API.
package main

import (
	"fmt"
	"log"

	"espftl"
	"espftl/internal/trace"
	"espftl/internal/workload"
)

const (
	// 160 MiB logical space on a 256 MiB raw device: the paper's ~62.5%
	// occupancy once preconditioning fills 80% of it.
	logicalSectors = 40 << 10
	requests       = 20000
)

func replay(kind espftl.FTLKind, reqs []workload.Request) (espftl.Stats, float64) {
	ssd, err := espftl.New(espftl.Config{
		FTL: kind,
		Geometry: espftl.Geometry{
			Channels:        8,
			ChipsPerChannel: 4,
			BlocksPerChip:   16,
			PagesPerBlock:   32,
			SubpagesPerPage: 4,
			SubpageBytes:    4096,
		},
		LogicalSectors: logicalSectors,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Precondition: fill 80% of the logical space sequentially.
	for lsn := int64(0); lsn < logicalSectors*8/10; lsn += 32 {
		if err := ssd.Write(lsn, 32, false); err != nil {
			log.Fatal(err)
		}
	}
	if err := ssd.Flush(); err != nil {
		log.Fatal(err)
	}
	preconditioned := ssd.Stats()
	preElapsed := ssd.Elapsed()

	for i, r := range reqs {
		var err error
		switch r.Op {
		case workload.OpWrite:
			err = ssd.Write(r.LSN, r.Sectors, r.Sync)
		case workload.OpRead:
			err = ssd.Read(r.LSN, r.Sectors)
		case workload.OpTrim:
			err = ssd.Trim(r.LSN, r.Sectors)
		case workload.OpAdvance:
			err = ssd.Idle(r.Gap)
		}
		if err != nil {
			log.Fatalf("%s request %d: %v", kind, i, err)
		}
	}
	if err := ssd.Flush(); err != nil {
		log.Fatal(err)
	}
	elapsed := ssd.Elapsed() - preElapsed
	iops := float64(len(reqs)) / elapsed.Seconds()
	return ssd.Stats().Sub(preconditioned), iops
}

func main() {
	gen, err := workload.NewSynthetic(workload.Varmail(), logicalSectors*8/10, 4, 42)
	if err != nil {
		log.Fatal(err)
	}
	reqs := trace.Generate(gen, requests)
	fmt.Printf("replaying %d Varmail-style requests through the three FTLs\n\n", len(reqs))
	fmt.Printf("%-8s %10s %8s %8s %8s %10s\n", "FTL", "IOPS", "GC", "erases", "RMW", "reqWAF")
	for _, kind := range []espftl.FTLKind{espftl.CGMFTL, espftl.FGMFTL, espftl.SubFTL} {
		s, iops := replay(kind, reqs)
		fmt.Printf("%-8s %10.0f %8d %8d %8d %10.3f\n",
			kind, iops, s.GCInvocations, s.Device.Erases, s.RMWOps, s.AvgRequestWAF())
	}
	fmt.Println("\nexpected shape (paper Fig. 8): subFTL highest IOPS and fewest GC/erases;")
	fmt.Println("cgmFTL lowest IOPS, dominated by read-modify-writes.")
}
