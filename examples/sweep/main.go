// Sweep: regenerate the paper's motivation experiment (Fig. 2) in
// miniature — throughput of the CGM and FGM schemes as the small-write
// ratio r_small and the synchronous ratio r_synch vary. As in the paper,
// the sweep covers the two conventional schemes: it uses deliberately
// weak locality to isolate r_small and r_synch, whereas subFTL's design
// targets the high-locality small-write workloads of the evaluation
// (see espbench -run fig8a).
package main

import (
	"fmt"
	"log"

	"espftl/internal/experiment"
	"espftl/internal/workload"
)

func main() {
	kinds := []experiment.Kind{experiment.KindCGM, experiment.KindFGM}
	rSmalls := []float64{0, 0.5, 1.0}
	rSynchs := []float64{0, 1.0}

	fmt.Println("write throughput under the r_small / r_synch sweep (paper Fig. 2 in miniature):")
	fmt.Printf("%-8s %-8s %14s %14s\n", "r_small", "r_synch", "cgmFTL KB/s", "fgmFTL KB/s")
	for _, rsmall := range rSmalls {
		for _, rsync := range rSynchs {
			row := fmt.Sprintf("%-8.1f %-8.1f", rsmall, rsync)
			for _, kind := range kinds {
				res, err := experiment.Run(experiment.RunConfig{
					Kind:     kind,
					Requests: 12000,
					Profile:  workload.SweepProfile(rsmall, rsync),
				})
				if err != nil {
					log.Fatalf("%v rsmall=%v rsynch=%v: %v", kind, rsmall, rsync, err)
				}
				kbps := float64(res.Stats.HostSectorsWritten) * 4 / res.Elapsed.Seconds()
				row += fmt.Sprintf(" %14.0f", kbps)
			}
			fmt.Println(row)
		}
	}
	fmt.Println("\nexpected shape (the paper's §2 insight): when small writes are")
	fmt.Println("asynchronous the FGM buffer merges them into full pages and holds up;")
	fmt.Println("when they are synchronous (r_synch = 1) they fragment pages and FGM")
	fmt.Println("throughput falls steadily with r_small. CGM sits lowest throughout,")
	fmt.Println("RMW-bound, and degrades with r_small regardless of r_synch.")
}
