// Quickstart: build a simulated SSD with subFTL, write a mixed workload,
// read it back, and print the statistics that the paper's evaluation is
// built from.
package main

import (
	"fmt"
	"log"

	"espftl"
)

func main() {
	ssd, err := espftl.New(espftl.Config{FTL: espftl.SubFTL})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %s, FTL: %s, logical space: %d sectors\n\n",
		ssd.Geometry(), ssd.FTLName(), ssd.LogicalSectors())

	// A burst of synchronous 4-KB writes — the workload class that breaks
	// conventional FTLs on large-page NAND. subFTL services each with one
	// erase-free subpage program.
	for i := int64(0); i < 1000; i++ {
		if err := ssd.Write(i*4%4096, 1, true); err != nil {
			log.Fatal(err)
		}
	}
	// Some sequential large writes (16 KB each, page-aligned): these go
	// to the full-page region.
	for i := int64(0); i < 100; i++ {
		if err := ssd.Write(8192+i*4, 4, false); err != nil {
			log.Fatal(err)
		}
	}
	if err := ssd.Flush(); err != nil {
		log.Fatal(err)
	}
	// Read-your-writes is verified inside Read: any stale or lost sector
	// would surface as an error here.
	if err := ssd.Read(0, 64); err != nil {
		log.Fatal(err)
	}
	if err := ssd.Read(8192, 64); err != nil {
		log.Fatal(err)
	}

	s := ssd.Stats()
	fmt.Println("after 1000 sync small writes + 100 large writes:")
	fmt.Printf("  subpage program passes: %d (erase-free)\n", s.Device.SubPrograms)
	fmt.Printf("  full-page programs:     %d\n", s.Device.PagePrograms)
	fmt.Printf("  read-modify-writes:     %d\n", s.RMWOps)
	fmt.Printf("  erases:                 %d\n", s.Device.Erases)
	fmt.Printf("  request WAF (small):    %.3f  (1.0 = no write amplification)\n", s.AvgRequestWAF())
	fmt.Printf("  virtual device time:    %v\n", ssd.Elapsed())

	if err := ssd.Check(); err != nil {
		log.Fatalf("invariant violation: %v", err)
	}
	fmt.Println("\nall invariants hold.")
}
